"""Recovery: checkpoint + tail replay over a segmented journal.

One :class:`DurabilityManager` owns one directory holding a database's
entire durable state:

- ``journal-<start>.seg`` — journal segments.  A segment's name is the
  **global index** of its first record; record *j* of the segment is
  global record ``start + j``.  Segments rotate at every checkpoint, so
  a checkpoint's tail is exactly the segments at or after its index.
- ``checkpoint-<index>.ckpt`` — atomic full-state checkpoints
  (:mod:`repro.storage.checkpoint`); ``index`` counts the journal
  records the state incorporates.

**The recovery algorithm** (:meth:`DurabilityManager.recover`):

1. load the newest *valid* checkpoint (damaged ones are skipped — the
   journal can always fill the gap); with none, start from an empty
   database of the requested kind;
2. repair the final segment — a torn trailing record (the residue of a
   crash mid-append) is truncated; damage anywhere else is a hard
   :class:`~repro.errors.JournalError`, because in an append-only file
   nothing but the tail can be half-written;
3. replay, in global order, every record whose index is at or after the
   checkpoint's, driving the simulated clock so each transaction
   commits at its original instant — verifying, record by record, the
   commit hash chain (:mod:`repro.storage.chain`): every chained record
   must link to the walked head, the head crossing the checkpoint
   boundary must equal the head the checkpoint recorded, and segments
   must be contiguous (a hole above the checkpoint index is a hard
   error, not a silent skip).  A broken or rewritten link raises
   :class:`~repro.errors.ChainError` — its own damage kind, distinct
   from torn tails and CRC corruption;
4. attach: new commits append to the final segment, and
   :meth:`DurabilityManager.checkpoint` publishes a fresh checkpoint
   and rotates to a new segment.

The recovered database is observationally identical to one that never
crashed (same snapshots, timeslices, rollbacks and TQuel answers) up to
the last *durable* commit — a commit whose record never reached the
journal is lost, which is the documented contract (docs/DURABILITY.md).

Checkpoints are pure optimization: ``recover(use_checkpoint=False)``
ignores them and replays all of history, and the equivalence tests in
``tests/storage/test_recovery.py`` hold the two paths to identical
answers for every database kind.  Segments strictly below the newest
checkpoint index may be deleted by an operator to reclaim space; this
module never deletes anything.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ChainError, JournalError
from repro.obs import runtime as _obs
from repro.storage import chain as _chain
from repro.storage.checkpoint import CheckpointStore
from repro.storage.framing import PROTECTION_LEGACY
from repro.storage.io import REAL_IO, StorageIO
from repro.storage.journal import Journal, apply_entries
from repro.storage.serializer import load_database
from repro.time.clock import SimulatedClock

_SEGMENT = re.compile(r"^journal-(\d{8,})\.seg$")


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`DurabilityManager.recover` run did."""

    #: Commit index of the checkpoint used, or ``None`` for full replay.
    checkpoint_index: Optional[int]
    #: Journal records re-run (the tail; all of them on full replay).
    records_replayed: int
    #: Durable records on disk after repair (checkpointed + replayed).
    records_total: int
    #: Journal segments opened.
    segments_read: int
    #: Bytes of torn trailing record physically truncated (0 = clean).
    torn_bytes_truncated: int
    #: Checkpoint files present but newer than the one used (i.e. damaged
    #: and skipped); nonzero means a checkpoint write was interrupted.
    checkpoints_skipped: int
    #: Chained records whose hash link was verified during the walk.
    chain_verified: int = 0
    #: The history's commit-hash chain head after recovery (``None``
    #: when the tail is unchained legacy records).
    chain_head: Optional[str] = None
    #: Bare-JSON lines crossed — records carrying no checksum at all.
    legacy_frames: int = 0

    @property
    def full_replay(self) -> bool:
        """True when no checkpoint could be used."""
        return self.checkpoint_index is None

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro recover --json`` prints)."""
        data = dataclasses.asdict(self)
        data["full_replay"] = self.full_replay
        return data


class DurabilityManager:
    """Checkpointed, crash-tolerant persistence for one database.

    ``fsync=True`` forces every journal append to the device (checkpoint
    publication always syncs).  ``io`` is the fault-injection seam; the
    default is the real filesystem.
    """

    def __init__(self, directory: str, fsync: bool = False,
                 io: Optional[StorageIO] = None,
                 shard: Optional[int] = None) -> None:
        self._directory = directory
        self._fsync = fsync
        self._io = io if io is not None else REAL_IO
        self._checkpoints = CheckpointStore(directory, io=self._io)
        self._database = None
        self._count = 0  # durable records; also the next global index
        self._live: Optional[Journal] = None
        self._live_start = 0
        # Commit-hash chain head of the durable stream (None = unknown,
        # i.e. the tail is unchained legacy records).
        self._head: Optional[str] = None
        #: which shard this journal stream serves (None when unsharded);
        #: purely an observability label on journal-append spans/events.
        self.shard = shard

    # -- accessors ------------------------------------------------------------

    @property
    def directory(self) -> str:
        """The durability directory."""
        return self._directory

    @property
    def database(self):
        """The attached database (``None`` before recover/attach)."""
        return self._database

    @property
    def record_count(self) -> int:
        """Durable journal records across all segments."""
        return self._count

    @property
    def checkpoints(self) -> CheckpointStore:
        """The directory's checkpoint store."""
        return self._checkpoints

    @property
    def chain_head(self) -> Optional[str]:
        """Commit-hash chain head of the durable history (``None`` when
        the tail is unchained legacy records)."""
        return self._head

    def segments(self) -> List[Tuple[int, str]]:
        """``(start_index, path)`` of every segment, oldest first."""
        found = []
        if os.path.isdir(self._directory):
            for name in os.listdir(self._directory):
                match = _SEGMENT.match(name)
                if match:
                    found.append((int(match.group(1)),
                                  os.path.join(self._directory, name)))
        return sorted(found)

    def _segment_path(self, start: int) -> str:
        return os.path.join(self._directory, f"journal-{start:08d}.seg")

    # -- recovery ----------------------------------------------------------------

    def recover(self, factory: Callable[..., Any],
                use_checkpoint: bool = True):
        """Rebuild the database from disk; returns ``(database, report)``.

        Works on an empty (or absent) directory too, yielding a fresh
        database — so ``recover`` is also how a durable database is
        created.  The returned database is attached: its commits append
        to the live segment from here on.  ``use_checkpoint=False``
        forces a full-history replay (the benchmark baseline and the
        equivalence tests' reference path).
        """
        os.makedirs(self._directory, exist_ok=True)
        obs = _obs.current()
        with obs.tracer.span("recovery.recover",
                             directory=self._directory), \
                obs.metrics.histogram("recovery.recover_seconds").time():
            segment_list = self.segments()
            loaded = (self._checkpoints.latest() if use_checkpoint
                      else None)
            ckpt_head: Optional[str] = None
            if loaded is not None:
                base, ckpt_entry = loaded
                ckpt_head = ckpt_entry.get("chain_head")
                database = load_database(ckpt_entry["database"])
            else:
                base = 0
                database = factory(clock=SimulatedClock(1))
            clock = database.manager.clock.source
            if not isinstance(clock, SimulatedClock):
                raise JournalError(
                    "recovery drives a simulated clock; the factory must "
                    "accept clock=SimulatedClock(...)")
            replayed = 0
            truncated = 0
            legacy = 0
            total = base
            # Hash-chain verification walks every record read, seeded
            # GENESIS when history starts at record 0 and *unknown*
            # when an operator deleted checkpointed prefix segments.
            verifier = _chain.ChainVerifier(_chain.GENESIS)
            reconciled = base == 0  # head checked against the checkpoint?
            expected: Optional[int] = None  # next global index expected
            for position, (start, path) in enumerate(segment_list):
                name = os.path.basename(path)
                journal = Journal(path, fsync=self._fsync, io=self._io)
                if position == len(segment_list) - 1:
                    # Only the live segment may carry a torn tail; repair
                    # it so future appends extend a clean file.
                    truncated = journal.truncate_torn_tail()
                scanned, damage = journal.scan()
                if damage is not None:  # strict: damage here is fatal
                    raise JournalError(
                        f"corrupt journal record at line "
                        f"{damage.line_number} (byte offset "
                        f"{damage.offset}) in {path}: {damage.reason}")
                if expected is None:
                    # First segment present.  Anything it fails to cover
                    # must be covered by the checkpoint instead.
                    if start > base:
                        raise JournalError(
                            f"journal gap: records {base}..{start} are in "
                            f"no segment (first segment is {name}); the "
                            f"history cannot be reconstructed")
                    if start > 0:
                        verifier = _chain.ChainVerifier(None)
                elif start != expected:
                    if expected < start <= base:
                        # A deleted-by-the-operator range entirely below
                        # the checkpoint: replay is unaffected, but the
                        # chain cannot be followed across the hole.
                        verifier.forget()
                    else:
                        raise JournalError(
                            f"journal gap: segment {name} starts at "
                            f"record {start} but the previous segment "
                            f"ends at {expected}; records in between are "
                            f"in no segment")
                tail = []
                for index, record in enumerate(scanned):
                    if record.protection == PROTECTION_LEGACY:
                        legacy += 1
                    if not reconciled and start + index >= base:
                        # Crossing the checkpoint boundary: the walked
                        # head must match the head the checkpoint
                        # recorded for the same prefix.
                        if ckpt_head is not None:
                            if (verifier.head is not None
                                    and verifier.head != ckpt_head):
                                raise ChainError(
                                    f"chain break at {name}:"
                                    f"{record.line_number}: checkpoint "
                                    f"{base} records head "
                                    f"{ckpt_head[:12]}… but the journal "
                                    f"walks to {verifier.head[:12]}…")
                            if verifier.head is None:
                                verifier.head = ckpt_head
                        reconciled = True
                    verifier.take(record.entry,
                                  where=f"{name}:{record.line_number}")
                    if start + index >= base:
                        tail.append(record.entry)
                if tail:
                    with obs.tracer.span("recovery.tail_replay",
                                         segment=name,
                                         records=len(tail)):
                        apply_entries(database, clock, tail)
                    replayed += len(tail)
                expected = start + len(scanned)
                total = max(total, expected)
            head = verifier.head if reconciled else ckpt_head
            obs.metrics.counter("recovery.records_replayed").inc(replayed)
            obs.metrics.counter("recovery.chain_links_verified").inc(
                verifier.verified)
            obs.metrics.counter("recovery.runs").inc()

            self._database = database
            self._count = total
            self._head = head
            if segment_list:
                self._live_start, live_path = segment_list[-1]
                self._live = Journal(live_path, fsync=self._fsync,
                                     io=self._io)
            else:
                self._live_start = base
                self._live = Journal(self._segment_path(base),
                                     fsync=self._fsync, io=self._io)
            self._live.set_head(head)
            database.manager.on_commit = self._on_commit

            skipped = len([index for index in self._checkpoints.indices()
                           if loaded is None or index > base])
            report = RecoveryReport(
                checkpoint_index=base if loaded is not None else None,
                records_replayed=replayed,
                records_total=total,
                segments_read=len(segment_list),
                torn_bytes_truncated=truncated,
                checkpoints_skipped=skipped if use_checkpoint else 0,
                chain_verified=verifier.verified,
                chain_head=head,
                legacy_frames=legacy,
            )
        return database, report

    def attach(self, database) -> None:
        """Adopt a live in-memory database into an *empty* directory.

        Its existing commit log is back-filled into segment 0 (so late
        attachment still captures full history, like ``Journal.bind``),
        then every future commit journals as it happens.  A directory
        that already holds durable state must be :meth:`recover`\\ ed
        instead — attaching over it would fork history.
        """
        if self.segments() or self._checkpoints.indices():
            raise JournalError(
                f"{self._directory} already holds a durable history; "
                f"recover() it instead of attaching over it")
        os.makedirs(self._directory, exist_ok=True)
        self._database = database
        self._count = 0
        self._live_start = 0
        self._head = _chain.GENESIS
        self._live = Journal(self._segment_path(0), fsync=self._fsync,
                             io=self._io)
        self._live.set_head(self._head)
        for commit in database.log:
            self._head = self._live.record(commit, prev_hash=self._head)
            self._count += 1
        database.manager.on_commit = self._on_commit

    def _on_commit(self, record) -> None:
        """The attached database's post-commit hook: journal the record.

        Runs after the commit applied in memory; the commit is durable
        only once this append returns (a crash in between loses exactly
        that commit — the documented contract).  The manager fires this
        under its commit lock, so concurrent sessions
        (:mod:`repro.concurrency`) append records in serialized commit
        order and the ``_count`` increment never races."""
        obs = _obs.current()
        with obs.tracer.span("journal.append", shard=self.shard,
                             record=self._count):
            prev = self._head if self._head is not None else _chain.GENESIS
            self._head = self._live.record(record, prev_hash=prev)
            self._count += 1
        obs.events.emit("journal.append", shard=self.shard,
                        records=self._count)

    # -- checkpointing ---------------------------------------------------------------

    def checkpoint(self) -> str:
        """Publish a checkpoint of the attached database; returns its path.

        The checkpoint covers every record journaled so far, and the
        journal rotates to a fresh segment starting at that index, so
        the next recovery replays only records committed after this
        call.  Must run between transactions (single-writer system);
        under the concurrent session layer, quiesce the layer first —
        checkpointing races no individual commit (appends are ordered
        by the commit lock) but a checkpoint taken mid-burst may simply
        cover fewer records than the burst will leave behind.
        """
        if self._database is None:
            raise JournalError("no database attached; recover() or "
                               "attach() first")
        path = self._checkpoints.write(self._database, self._count,
                                       chain_head=self._head)
        if self._count != self._live_start:
            self._live_start = self._count
            segment_path = self._segment_path(self._count)
            self._live = Journal(segment_path, fsync=self._fsync, io=self._io)
            self._live.set_head(self._head)
            # Create the rotated segment eagerly (zero-length) so the
            # directory names its live segment even before the first
            # append.  A crash in this window leaves an empty trailing
            # segment file, which recovery tolerates: zero records is a
            # valid (clean) tail, not damage.  Deliberately not routed
            # through the io seam: creating an empty file is metadata,
            # not a durability write, and must not consume a
            # fault-injection crash budget.
            with open(segment_path, "ab"):
                pass
            _obs.current().metrics.counter("recovery.segments_rotated").inc()
        return path

    def adopt_snapshot(self, database, count: int,
                       chain_head: Optional[str] = None) -> str:
        """Install *database* — a trusted snapshot at global record
        *count* — as this directory's new baseline; returns the
        checkpoint path.

        The snapshot repair path (:mod:`repro.storage.scrub`): when a
        damaged suffix cannot be re-fetched record-by-record (the source
        compacted past its floor), the whole verified state arrives as a
        snapshot instead.  A checkpoint at *count* (carrying the
        source's *chain_head*) is published and the journal rotates
        there, so the next recovery starts from the snapshot and never
        rereads the quarantined range.  Segments the caller left behind
        below *count* are tolerated by recovery's gap rules; segments at
        or beyond *count* must have been quarantined first — they would
        overlap the rotated stream.
        """
        os.makedirs(self._directory, exist_ok=True)
        for start, path in self.segments():
            if start >= count:
                raise JournalError(
                    f"adopt_snapshot({count}) would overlap segment "
                    f"{os.path.basename(path)}; quarantine it first")
        self._database = database
        self._count = count
        self._head = chain_head
        ckpt = self._checkpoints.write(database, count,
                                       chain_head=chain_head)
        self._live_start = count
        segment_path = self._segment_path(count)
        self._live = Journal(segment_path, fsync=self._fsync, io=self._io)
        self._live.set_head(chain_head)
        with open(segment_path, "ab"):
            pass
        database.manager.on_commit = self._on_commit
        _obs.current().metrics.counter("recovery.snapshots_adopted").inc()
        return ckpt

    def __repr__(self) -> str:
        return (f"DurabilityManager({self._directory!r}, "
                f"{self._count} records)")


def detect_kind(directory: str) -> Optional[str]:
    """The database kind recorded in the newest valid checkpoint.

    ``None`` when the directory has no usable checkpoint (journal-only
    directories don't record the kind; callers fall back to asking)."""
    found = CheckpointStore(directory).latest()
    if found is None:
        return None
    return found[1]["database"].get("kind")
