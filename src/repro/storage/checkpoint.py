"""Checkpoints: the full database state, published atomically.

A checkpoint is a single framed record (:mod:`repro.storage.framing`,
tag ``c1``) holding :func:`~repro.storage.serializer.dump_database`
output plus the **commit index** — how many journal records the state
already incorporates.  Recovery loads the newest *valid* checkpoint and
replays only the journal records at or after that index, which is what
makes restart cost proportional to the journal tail instead of all of
history.

**Durability obligations.**  A checkpoint file is written atomically
(:meth:`~repro.storage.io.StorageIO.write_atomic`: temp file + rename),
so a reader sees the old checkpoint, the new one, or — after a crash —
a stray ``.tmp`` that is never read.  A checkpoint that *does* turn up
damaged (a torn non-atomic copy, bit rot) fails its length/CRC check and
is skipped by :meth:`CheckpointStore.latest`, never trusted; the journal
remains the source of truth and recovery simply replays more of it.
Checkpoints are an optimization, not a durability requirement: deleting
every checkpoint file loses no data.

File naming: ``checkpoint-<commit_index padded to 8>.ckpt`` inside the
durability directory, so the newest checkpoint is the lexicographically
largest name and the index is recoverable from the name alone.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.obs import runtime as _obs
from repro.storage.framing import (CHECKPOINT_TAG, FrameError, frame,
                                   parse_frame)
from repro.storage.io import REAL_IO, StorageIO
from repro.storage.serializer import dump_database, load_database

CHECKPOINT_FORMAT = 1

_NAME = re.compile(r"^checkpoint-(\d{8,})\.ckpt$")


def checkpoint_bytes(database, commit_index: int,
                     chain_head: Optional[str] = None) -> bytes:
    """The framed on-disk form of a checkpoint (exposed for tests).

    *chain_head* is the journal's commit-hash chain head at
    *commit_index* (:mod:`repro.storage.chain`); recovery verifies the
    replayed tail links onto it.  ``None`` (a pre-chain writer, or an
    unknown head behind legacy records) omits the key — the format
    version stays 1 and old checkpoints stay loadable.
    """
    body: Dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "commit_index": commit_index,
        "database": dump_database(database),
    }
    if chain_head is not None:
        body["chain_head"] = chain_head
    payload = json.dumps(body, ensure_ascii=False, sort_keys=True)
    return (frame(payload, tag=CHECKPOINT_TAG) + "\n").encode("utf-8")


def read_checkpoint(path: str) -> Dict[str, Any]:
    """Parse and validate one checkpoint file.

    Raises :class:`~repro.errors.CheckpointError` when the file is
    missing, fails its frame (torn or corrupt), or is of an unknown
    format version.  Returns the payload dict with ``commit_index`` and
    ``database`` keys.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        entry = parse_frame(data.decode("utf-8", errors="strict").rstrip("\n"),
                            tag=CHECKPOINT_TAG)
    except (FrameError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"damaged checkpoint {path}: {exc}") from exc
    if entry.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {entry.get('format')!r} in {path}")
    if not isinstance(entry.get("commit_index"), int):
        raise CheckpointError(f"checkpoint {path} lacks a commit index")
    return entry


class CheckpointStore:
    """The checkpoint files of one durability directory."""

    def __init__(self, directory: str,
                 io: Optional[StorageIO] = None) -> None:
        self._directory = directory
        self._io = io if io is not None else REAL_IO

    @property
    def directory(self) -> str:
        """The directory checkpoints live in."""
        return self._directory

    def path_for(self, commit_index: int) -> str:
        """The file name a checkpoint at *commit_index* gets."""
        return os.path.join(self._directory,
                            f"checkpoint-{commit_index:08d}.ckpt")

    def indices(self) -> List[int]:
        """Commit indices of every checkpoint file present, ascending.

        Purely name-based; files are not validated here."""
        found = []
        if os.path.isdir(self._directory):
            for name in os.listdir(self._directory):
                match = _NAME.match(name)
                if match:
                    found.append(int(match.group(1)))
        return sorted(found)

    def write(self, database, commit_index: int,
              chain_head: Optional[str] = None) -> str:
        """Atomically publish a checkpoint of *database*; returns its path.

        Must be called between transactions (the system is single-writer;
        the caller — :class:`~repro.storage.recovery.DurabilityManager` —
        guarantees no commit is in flight)."""
        os.makedirs(self._directory, exist_ok=True)
        path = self.path_for(commit_index)
        obs = _obs.current()
        with obs.tracer.span("recovery.checkpoint",
                             commit_index=commit_index), \
                obs.metrics.histogram("recovery.checkpoint_seconds").time():
            self._io.write_atomic(path,
                                  checkpoint_bytes(database, commit_index,
                                                   chain_head=chain_head),
                                  fsync=True)
        obs.metrics.counter("recovery.checkpoints_written").inc()
        return path

    def latest(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest **valid** checkpoint, or ``None``.

        Damaged checkpoints are skipped (newest first, counting each skip
        into the ``recovery.checkpoints_skipped`` metric) rather than
        trusted — the journal can always fill the gap.
        """
        metrics = _obs.current().metrics
        for commit_index in reversed(self.indices()):
            try:
                entry = read_checkpoint(self.path_for(commit_index))
            except CheckpointError:
                metrics.counter("recovery.checkpoints_skipped").inc()
                continue
            return commit_index, entry
        return None

    def load_latest(self, clock=None):
        """Load the newest valid checkpoint into a live database.

        Returns ``(commit_index, database)`` or ``None`` when no usable
        checkpoint exists."""
        found = self.latest()
        if found is None:
            return None
        commit_index, entry = found
        return commit_index, load_database(entry["database"], clock=clock)

    def __repr__(self) -> str:
        return f"CheckpointStore({self._directory!r})"
