"""The storage I/O seam: where bytes become durable.

Every write the durability subsystem performs goes through a
:class:`StorageIO`, which defines exactly two primitives and their
crash-safety contracts:

- :meth:`StorageIO.append` — append bytes to a file and flush them to
  the operating system (optionally ``fsync`` to the device).  A crash
  *during* the call may leave any prefix of the bytes in the file (a
  torn record); a crash *before* the call loses the bytes entirely.
  The journal's record framing (:mod:`repro.storage.framing`) is what
  makes both residues detectable on recovery.
- :meth:`StorageIO.write_atomic` — publish a whole file
  all-or-nothing: the bytes are written to a ``.tmp`` sibling, flushed
  (and ``fsync``\\ ed when asked), then :func:`os.replace`\\ d over the
  destination.  Readers never observe a half-written destination file;
  a crash leaves either the old file, the new file, or a stray ``.tmp``
  that recovery ignores.

The seam exists so the fault-injection harness
(:mod:`repro.storage.faults`) can substitute a :class:`~repro.storage.
faults.FaultyIO` that deterministically dies at each of those crash
points; production code always uses the process-wide :data:`REAL_IO`.
"""

from __future__ import annotations

import os


class StorageIO:
    """Real filesystem writes with the documented crash-safety contract."""

    def append(self, path: str, data: bytes, fsync: bool = False) -> None:
        """Append *data* to *path*; flushed to the OS before returning.

        With ``fsync=True`` the bytes are also forced to the device, so
        they survive an operating-system crash, not just a process
        crash.  Appends are the journal's durability point: a commit is
        durable exactly when its record's ``append`` has returned.
        """
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())

    def write_atomic(self, path: str, data: bytes,
                     fsync: bool = False) -> None:
        """Replace *path* with *data* atomically (write tmp, rename).

        A reader (or a recovery pass) sees either the previous complete
        file or the new complete file, never a mixture.  The ``.tmp``
        sibling a crash may leave behind is never read by recovery.
        """
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    def __repr__(self) -> str:
        return "StorageIO()"


#: The process-wide real I/O; the default everywhere an ``io=`` is taken.
REAL_IO = StorageIO()
