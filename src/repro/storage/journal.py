"""The durable journal: framed commit records in an append-only file.

Because transaction time is append-only and system-assigned, the sequence
of commit records *is* a complete description of a database: replaying the
journal through a fresh database of the same kind reproduces every store,
every transaction time, and therefore every rollback answer.  This module
makes that operational:

- :meth:`Journal.bind` hooks a live database so every commit is appended
  to the journal file as it happens;
- :meth:`Journal.replay` rebuilds a database from the file, driving a
  simulated clock so each transaction commits at its original instant.

**Durability obligations.**  One commit record is one framed line
(:mod:`repro.storage.framing`: length-prefixed, CRC32-checksummed).  The
append is flushed to the operating system before :meth:`record` returns
— that is the commit's durability point against *process* crashes; pass
``fsync=True`` to also survive OS/power failure at the cost of a device
sync per commit.  A crash mid-append leaves a torn final record that
framing detects; :meth:`read` with ``recover=True`` drops exactly that
trailing damage (and :meth:`truncate_torn_tail` repairs the file), while
damage *before* the final record is never recoverable and always raises
:class:`~repro.errors.JournalError` with the failing line number and
byte offset.

Operations are serialized with the tagged-value scheme of
:mod:`repro.storage.serializer`.  ``define`` operations serialize their
schema; declared constraints other than the schema key are **not**
journaled (they close over arbitrary predicates) — replayed databases
re-enforce the key but not ad-hoc check constraints.  This is the one
documented exception to "the journal describes everything".
"""

from __future__ import annotations

import os
import threading
from typing import (Any, Callable, Dict, List, NamedTuple, Optional,
                    Sequence, Tuple)

from repro.errors import JournalError
from repro.obs import runtime as _obs
from repro.storage import chain as _chain
from repro.storage.framing import (CHAINED_TAG, PROTECTION_CHAINED,
                                   FrameError, frame_record,
                                   parse_journal_line)
from repro.storage.io import REAL_IO, StorageIO
from repro.storage.serializer import (decode_value, encode_value,
                                      schema_from_dict, schema_to_dict)
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant
from repro.txn.log import CommitRecord
from repro.txn.transaction import Operation


def _encode_arguments(arguments: Dict[str, Any]) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for key, value in arguments.items():
        if key == "schema":
            encoded[key] = schema_to_dict(value)
        elif key == "constraints":
            encoded[key] = []  # documented: not journaled
        elif isinstance(value, dict):
            encoded[key] = {inner: encode_value(v) for inner, v in value.items()}
        else:
            encoded[key] = encode_value(value)
    return encoded


def _decode_arguments(arguments: Dict[str, Any]) -> Dict[str, Any]:
    decoded: Dict[str, Any] = {}
    for key, value in arguments.items():
        if key == "schema":
            decoded[key] = schema_from_dict(value)
        elif key == "constraints":
            decoded[key] = ()
        elif isinstance(value, dict) and not ("$instant" in value
                                              or "$period" in value):
            decoded[key] = {inner: decode_value(v) for inner, v in value.items()}
        else:
            decoded[key] = decode_value(value)
    return decoded


def encode_operation(op: Operation) -> Dict[str, Any]:
    """The plain-data form of one operation (journal and 2PC records)."""
    return {"action": op.action, "relation": op.relation,
            "arguments": _encode_arguments(op.arguments)}


def decode_operation(data: Dict[str, Any]) -> Operation:
    """Rebuild an :class:`Operation` from :func:`encode_operation` data."""
    return Operation(data["action"], data["relation"],
                     _decode_arguments(data["arguments"]))


def encode_commit(commit: CommitRecord) -> Dict[str, Any]:
    """The plain-data form of one commit record (what gets framed)."""
    return {
        "sequence": commit.sequence,
        "commit_time": encode_value(commit.commit_time),
        "operations": [encode_operation(op) for op in commit.operations],
    }


def apply_entries(database, clock: SimulatedClock,
                  entries: Sequence[Dict[str, Any]]) -> int:
    """Re-run journal *entries* against *database*, oldest first.

    *clock* must be the simulated clock the database's transaction clock
    reads: each entry sets it to the recorded commit time before the
    transaction re-runs, and a mismatch between the recorded and the
    re-assigned commit time raises :class:`JournalError` (replay drift —
    the journal and the database disagree about history).  Returns the
    number of entries applied.  Shared by :meth:`Journal.replay` and the
    checkpoint-tail recovery in :mod:`repro.storage.recovery`.
    """
    for entry in entries:
        commit_time = decode_value(entry["commit_time"])
        if not isinstance(commit_time, Instant):
            raise JournalError(f"bad commit time in entry {entry!r}")
        clock.set(commit_time)
        operations = [decode_operation(op) for op in entry["operations"]]
        actual = database.manager.run(operations)
        if actual != commit_time:
            raise JournalError(
                f"replay drift: journal says {commit_time}, "
                f"database committed at {actual}"
            )
    return len(entries)


class ScannedRecord(NamedTuple):
    """One parsed journal record with its position in the file."""

    line_number: int
    offset: int  # byte offset of the record's first byte
    entry: Dict[str, Any]
    #: How the line was protected on disk (framing.PROTECTION_*).
    protection: str = PROTECTION_CHAINED


class TailDamage(NamedTuple):
    """A damaged final record: where it starts and why it failed."""

    line_number: int
    offset: int  # truncating the file here removes exactly the damage
    reason: str


class Journal:
    """A framed, append-only journal of commit records at *path*.

    ``fsync=True`` forces every record to the device (survives OS
    crashes); the default flushes to the OS only (survives process
    crashes).  ``io`` is the write seam the fault-injection harness
    replaces; production code leaves it alone.
    """

    def __init__(self, path: str, fsync: bool = False,
                 io: Optional[StorageIO] = None) -> None:
        self._path = path
        self._fsync = fsync
        self._io = io if io is not None else REAL_IO
        # Appends are serialized: commits normally arrive already ordered
        # (on_commit fires under the manager's commit lock), but a journal
        # bound directly from several threads must still never interleave
        # bytes of two records.
        self._append_lock = threading.Lock()
        # Running commit hash of the file's last chained record; ``None``
        # until known (resolved lazily from disk on the first append, or
        # seeded by set_head when the caller tracks the stream's head).
        self._head: Optional[str] = None

    @property
    def path(self) -> str:
        """The journal file path."""
        return self._path

    @property
    def chain_head(self) -> Optional[str]:
        """The last appended record's commit hash (``None`` = unknown)."""
        return self._head

    def set_head(self, head: Optional[str]) -> None:
        """Seed the chain head (e.g. a rotated segment continuing a
        stream whose head the caller tracks)."""
        self._head = head

    # -- writing -------------------------------------------------------------------

    def _resolve_prev(self) -> str:
        """The ``prev_hash`` the next record should carry.

        Known head wins; an empty or absent file starts at GENESIS; an
        existing file is scanned once and its chain walked with an
        *unknown* seed (a rotated segment's first record links to the
        previous segment, not GENESIS).  An unchained tail (legacy
        records) also yields GENESIS — verification re-anchors there.
        """
        if self._head is not None:
            return self._head
        if not os.path.exists(self._path) or os.path.getsize(self._path) == 0:
            return _chain.GENESIS
        records, _ = self.scan()
        head = _chain.head_of((r.entry for r in records), head=None)
        return head if head is not None else _chain.GENESIS

    def record(self, commit: CommitRecord,
               prev_hash: Optional[str] = None) -> str:
        """Append one chained, framed commit record; returns its commit
        hash.  Durable (per the ``fsync`` setting) when this returns.

        *prev_hash* overrides the journal's own head tracking — the
        durability manager threads the stream-wide head through rotated
        segments this way.  Left ``None``, the journal chains to its own
        last record.
        """
        entry = encode_commit(commit)
        with self._append_lock:
            prev = prev_hash if prev_hash is not None else self._resolve_prev()
            chained = _chain.chain_entry(entry, prev)
            line = frame_record(chained, tag=CHAINED_TAG)
            self._io.append(self._path, (line + "\n").encode("utf-8"),
                            fsync=self._fsync)
            self._head = chained[_chain.CHAIN_KEY]["commit"]
            head = self._head
        _obs.current().metrics.counter("journal.records").inc()
        return head

    def bind(self, database) -> None:
        """Journal every future commit of *database*, and any past ones.

        Existing records in the database's in-memory log are written first
        so binding late still captures the full history.  From here on a
        commit is durable once its record is appended — a crash between
        the in-memory apply and the append loses that one commit (see
        docs/DURABILITY.md).
        """
        for commit in database.log:
            self.record(commit)
        database.manager.on_commit = self.record

    # -- reading --------------------------------------------------------------------

    def scan(self) -> Tuple[List[ScannedRecord], Optional[TailDamage]]:
        """Parse the journal, reporting trailing damage instead of raising.

        Returns ``(records, damage)``.  ``damage`` is ``None`` for a
        clean file, or describes the damaged **final** record (the torn
        residue of a crashed append).  A damaged record *followed by
        further records* is mid-journal corruption — the append-only
        contract says that cannot be the residue of any crash — and
        raises :class:`JournalError` naming the line and byte offset.
        """
        if not os.path.exists(self._path):
            return [], None
        with open(self._path, "rb") as handle:
            data = handle.read()
        records: List[ScannedRecord] = []
        damage: Optional[TailDamage] = None
        offset = 0
        for line_number, chunk in enumerate(data.split(b"\n"), start=1):
            stripped = chunk.strip()
            if stripped:
                if damage is not None:
                    raise JournalError(
                        f"corrupt journal record at line "
                        f"{damage.line_number} (byte offset {damage.offset}) "
                        f"in {self._path}: {damage.reason} — records follow "
                        f"it, so this is not a torn tail"
                    )
                try:
                    entry, protection = parse_journal_line(
                        chunk.decode("utf-8"))
                except (FrameError, UnicodeDecodeError) as exc:
                    damage = TailDamage(line_number, offset, str(exc))
                else:
                    records.append(ScannedRecord(line_number, offset, entry,
                                                 protection))
            offset += len(chunk) + 1
        return records, damage

    def read(self, recover: bool = False) -> List[Dict[str, Any]]:
        """Every journal entry, oldest first.

        Strict by default: any damage raises :class:`JournalError` with
        the failing line number and byte offset.  With ``recover=True`` a
        damaged *final* record (the torn residue of a crashed append) is
        silently dropped; mid-journal damage still raises.
        """
        records, damage = self.scan()
        if damage is not None and not recover:
            raise JournalError(
                f"corrupt journal record at line {damage.line_number} "
                f"(byte offset {damage.offset}) in {self._path}: "
                f"{damage.reason}"
            )
        return [record.entry for record in records]

    def truncate_torn_tail(self) -> int:
        """Physically remove a torn trailing record; returns bytes dropped.

        The repair that recovery applies before new commits append again:
        after it, the file holds exactly the durable records.  Returns 0
        when the journal is already clean.  Mid-journal corruption raises
        (from :meth:`scan`) — it is never repaired.
        """
        _, damage = self.scan()
        if damage is None:
            return 0
        size = os.path.getsize(self._path)
        with open(self._path, "r+b") as handle:
            handle.truncate(damage.offset)
        dropped = size - damage.offset
        _obs.current().metrics.counter(
            "recovery.torn_bytes_truncated").inc(dropped)
        return dropped

    def replay(self, factory: Callable[..., Any], recover: bool = False):
        """Rebuild a database by replaying the journal.

        *factory* is called as ``factory(clock=...)`` with a simulated
        clock the journal drives, e.g. ``TemporalDatabase`` itself.  Each
        transaction is re-run at its original commit time, so the rebuilt
        database is observationally identical — rollbacks included.
        ``recover=True`` tolerates (drops) a torn trailing record.
        """
        entries = self.read(recover=recover)
        clock = SimulatedClock(1)
        database = factory(clock=clock)
        apply_entries(database, clock, entries)
        return database

    def __repr__(self) -> str:
        return f"Journal({self._path!r})"
