"""The durable journal: commit records as append-only JSON lines.

Because transaction time is append-only and system-assigned, the sequence
of commit records *is* a complete description of a database: replaying the
journal through a fresh database of the same kind reproduces every store,
every transaction time, and therefore every rollback answer.  This module
makes that operational:

- :meth:`Journal.bind` hooks a live database so every commit is appended
  to the journal file as it happens;
- :meth:`Journal.replay` rebuilds a database from the file, driving a
  simulated clock so each transaction commits at its original instant.

Operations are serialized with the tagged-value scheme of
:mod:`repro.storage.serializer`.  ``define`` operations serialize their
schema; declared constraints other than the schema key are **not**
journaled (they close over arbitrary predicates) — replayed databases
re-enforce the key but not ad-hoc check constraints.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import JournalError
from repro.storage.serializer import (decode_value, encode_value,
                                      schema_from_dict, schema_to_dict)
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant
from repro.txn.log import CommitRecord
from repro.txn.transaction import Operation


def _encode_arguments(arguments: Dict[str, Any]) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for key, value in arguments.items():
        if key == "schema":
            encoded[key] = schema_to_dict(value)
        elif key == "constraints":
            encoded[key] = []  # documented: not journaled
        elif isinstance(value, dict):
            encoded[key] = {inner: encode_value(v) for inner, v in value.items()}
        else:
            encoded[key] = encode_value(value)
    return encoded


def _decode_arguments(arguments: Dict[str, Any]) -> Dict[str, Any]:
    decoded: Dict[str, Any] = {}
    for key, value in arguments.items():
        if key == "schema":
            decoded[key] = schema_from_dict(value)
        elif key == "constraints":
            decoded[key] = ()
        elif isinstance(value, dict) and not ("$instant" in value
                                              or "$period" in value):
            decoded[key] = {inner: decode_value(v) for inner, v in value.items()}
        else:
            decoded[key] = decode_value(value)
    return decoded


class Journal:
    """A JSON-lines journal of commit records at *path*."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._synced = 0  # commit-log records already written (when bound)

    @property
    def path(self) -> str:
        """The journal file path."""
        return self._path

    # -- writing -------------------------------------------------------------------

    def record(self, commit: CommitRecord) -> None:
        """Append one commit record to the file."""
        line = json.dumps({
            "sequence": commit.sequence,
            "commit_time": encode_value(commit.commit_time),
            "operations": [
                {"action": op.action, "relation": op.relation,
                 "arguments": _encode_arguments(op.arguments)}
                for op in commit.operations
            ],
        }, ensure_ascii=False, sort_keys=True)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def bind(self, database) -> None:
        """Journal every future commit of *database*, and any past ones.

        Existing records in the database's in-memory log are written first
        so binding late still captures the full history.
        """
        for commit in database.log:
            self.record(commit)
        database.manager.on_commit = self.record

    # -- reading --------------------------------------------------------------------

    def read(self) -> List[Dict[str, Any]]:
        """Every journal entry, oldest first."""
        if not os.path.exists(self._path):
            return []
        entries = []
        with open(self._path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise JournalError(
                        f"corrupt journal line {line_number} in {self._path}"
                    ) from exc
        return entries

    def replay(self, factory: Callable[..., Any]):
        """Rebuild a database by replaying the journal.

        *factory* is called as ``factory(clock=...)`` with a simulated
        clock the journal drives, e.g. ``TemporalDatabase`` itself.  Each
        transaction is re-run at its original commit time, so the rebuilt
        database is observationally identical — rollbacks included.
        """
        entries = self.read()
        clock = SimulatedClock(1)
        database = factory(clock=clock)
        for entry in entries:
            commit_time = decode_value(entry["commit_time"])
            if not isinstance(commit_time, Instant):
                raise JournalError(f"bad commit time in entry {entry!r}")
            clock.set(commit_time)
            operations = [
                Operation(op["action"], op["relation"],
                          _decode_arguments(op["arguments"]))
                for op in entry["operations"]
            ]
            actual = database.manager.run(operations)
            if actual != commit_time:
                raise JournalError(
                    f"replay drift: journal says {commit_time}, "
                    f"database committed at {actual}"
                )
        return database

    def __repr__(self) -> str:
        return f"Journal({self._path!r})"
