"""Persistence: serialization and the durable append-only journal.

- :mod:`~repro.storage.serializer` — JSON encoding of every value,
  schema, and relation kind in the system, plus whole-database dump/load;
- :mod:`~repro.storage.journal` — a durable, append-only JSON-lines
  journal of commit records.  Replaying the journal through a fresh
  database reproduces it exactly, commit times included — the
  transaction-time semantics of the paper make the commit log a complete
  description of a rollback or temporal database.
"""

from repro.storage.serializer import (
    decode_value, dump_database, dumps_database, encode_value, load_database,
    loads_database, schema_from_dict, schema_to_dict,
)
from repro.storage.journal import Journal
from repro.storage.interchange import (
    export_csv, export_historical_csv, export_temporal_csv, import_csv,
    import_historical_csv, import_temporal_csv,
)

__all__ = [
    "Journal",
    "export_csv",
    "export_historical_csv",
    "export_temporal_csv",
    "import_csv",
    "import_historical_csv",
    "import_temporal_csv",
    "decode_value",
    "dump_database",
    "dumps_database",
    "encode_value",
    "load_database",
    "loads_database",
    "schema_from_dict",
    "schema_to_dict",
]
