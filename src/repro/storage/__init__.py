"""Persistence: serialization, the durable journal, and recovery.

The layer is built bottom-up, and each module states the durability
obligation it carries:

- :mod:`~repro.storage.serializer` — JSON encoding of every value,
  schema, and relation kind in the system, plus whole-database
  dump/load.  Pure data transformation: no I/O, no durability claims.
- :mod:`~repro.storage.framing` — the on-disk record format: one line,
  length-prefixed and CRC32-checksummed, so a reader can tell a *torn*
  record (crash residue, recoverable at the tail) from a *corrupt* one
  (never recoverable).
- :mod:`~repro.storage.chain` — the commit hash chain: every journal
  record names its parent's commit hash, making history tamper-evident
  (a rewritten record with a recomputed CRC still breaks the chain) and
  prefix-comparable (equal heads ⇒ equal histories).
- :mod:`~repro.storage.scrub` — the integrity scrubber: offline audit
  of segments, checkpoints and 2PC side logs; quarantine of damaged
  files; repair by re-fetching the damaged suffix from a healthy
  source (``repro audit`` / ``repro scrub``).
- :mod:`~repro.storage.io` — the two primitives everything durable is
  built from: flushed append and atomic whole-file replace.  Also the
  seam the fault-injection harness (:mod:`~repro.storage.faults`)
  replaces to simulate crashes deterministically.
- :mod:`~repro.storage.journal` — framed commit records in an
  append-only file.  Because transaction time is append-only and
  system-assigned, replaying the journal reproduces the database
  exactly, commit times included — the paper's transaction-time
  semantics make the commit log a complete description of a rollback
  or temporal database.
- :mod:`~repro.storage.checkpoint` — atomic full-state snapshots keyed
  by the journal records they incorporate.  Pure optimization: a
  damaged or deleted checkpoint costs replay time, never data.
- :mod:`~repro.storage.recovery` — :class:`DurabilityManager`, which
  ties segments and checkpoints into restart = *latest valid
  checkpoint + tail replay*, with torn-tail repair.

The crash-safety contract these modules jointly implement is documented
in ``docs/DURABILITY.md``.
"""

from repro.storage.serializer import (
    decode_value, dump_database, dumps_database, encode_value, load_database,
    loads_database, schema_from_dict, schema_to_dict,
)
from repro.storage.framing import (
    CHAINED_TAG, CHECKPOINT_TAG, JOURNAL_TAG, PROTECTION_CHAINED,
    PROTECTION_CRC, PROTECTION_LEGACY, FrameDamage, FrameError, frame,
    frame_record, parse_frame, parse_journal_line,
)
from repro.storage.chain import (
    GENESIS, ChainVerifier, chain_entry, content_hash, entry_chain,
    head_of, link_hash,
)
from repro.storage.io import REAL_IO, StorageIO
from repro.storage.journal import Journal, apply_entries, encode_commit
from repro.storage.checkpoint import (
    CheckpointStore, checkpoint_bytes, read_checkpoint,
)
from repro.storage.recovery import DurabilityManager, RecoveryReport, detect_kind
from repro.storage.faults import (
    ALL_CRASH_POINTS, CrashPoint, FaultyIO, SimulatedCrash, flip_byte,
    tamper_chain_field, tamper_record, truncate_file,
)
from repro.storage.scrub import (
    AuditReport, Finding, RepairReport, Scrubber, audit_directory,
    audit_sharded,
)
from repro.storage.interchange import (
    export_csv, export_historical_csv, export_temporal_csv, import_csv,
    import_historical_csv, import_temporal_csv,
)

__all__ = [
    "Journal",
    "apply_entries",
    "encode_commit",
    "CheckpointStore",
    "checkpoint_bytes",
    "read_checkpoint",
    "DurabilityManager",
    "RecoveryReport",
    "detect_kind",
    "StorageIO",
    "REAL_IO",
    "CrashPoint",
    "ALL_CRASH_POINTS",
    "FaultyIO",
    "SimulatedCrash",
    "JOURNAL_TAG",
    "CHAINED_TAG",
    "CHECKPOINT_TAG",
    "PROTECTION_CHAINED",
    "PROTECTION_CRC",
    "PROTECTION_LEGACY",
    "FrameDamage",
    "FrameError",
    "frame",
    "frame_record",
    "parse_frame",
    "parse_journal_line",
    "GENESIS",
    "ChainVerifier",
    "chain_entry",
    "content_hash",
    "entry_chain",
    "head_of",
    "link_hash",
    "flip_byte",
    "truncate_file",
    "tamper_record",
    "tamper_chain_field",
    "AuditReport",
    "Finding",
    "RepairReport",
    "Scrubber",
    "audit_directory",
    "audit_sharded",
    "export_csv",
    "export_historical_csv",
    "export_temporal_csv",
    "import_csv",
    "import_historical_csv",
    "import_temporal_csv",
    "decode_value",
    "dump_database",
    "dumps_database",
    "encode_value",
    "load_database",
    "loads_database",
    "schema_from_dict",
    "schema_to_dict",
]
