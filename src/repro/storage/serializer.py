"""JSON serialization of values, schemas, relations and whole databases.

Encoding conventions (tagged objects, so plain values stay plain):

- ``{"$instant": "1982-12-15", "granularity": "day"}`` — finite instants;
  ``"$instant": "inf" / "-inf"`` for the unbounded endpoints;
- ``{"$period": [start, end]}`` — periods;
- schemas carry attribute name, domain descriptor and nullability, plus
  the key;
- domains serialize by descriptor: the built-ins by name, enumerations
  with their value lists, user-defined time with its display name and
  granularity.

``dump_database``/``load_database`` persist a whole database of any kind,
including rollback/temporal history, event-relation flags, the commit log
and the clock position, so a loaded database answers every query the
original did.  *Check constraints are not serialized* (they close over
arbitrary predicates); key constraints survive via the schema key.

**Durability obligations.**  ``dump_database`` is the payload of every
checkpoint (:mod:`repro.storage.checkpoint`), so its completeness is
load-bearing for recovery: anything it dropped would silently vanish
across a checkpointed restart.  In particular the *clock position* must
round-trip — recovery replays the journal tail through the restored
clock, and a clock restored too early would stamp replayed commits onto
the wrong instants.  This module only produces and consumes JSON text;
*when* those bytes are durable is decided by :mod:`repro.storage.io`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from repro.core.historical import (HistoricalDatabase, HistoricalRelation,
                                   HistoricalRow)
from repro.core.rollback import (INTERVAL, RollbackDatabase,
                                 RollbackRelation, StateSequence,
                                 TransactionTimeRow)
from repro.core.static import StaticDatabase
from repro.core.temporal import BitemporalRow, TemporalDatabase, TemporalRelation
from repro.errors import StorageError
from repro.relational.domain import Domain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.tuple import Tuple
from repro.time.chronon import Granularity
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant, NEG_INF, POS_INF
from repro.time.period import Period

FORMAT_VERSION = 1

_BUILTIN_DOMAINS = {
    "string": Domain.STRING,
    "integer": Domain.INTEGER,
    "float": Domain.FLOAT,
    "boolean": Domain.BOOLEAN,
    "date": Domain.DATE,
    "any": Domain.ANY,
}


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Encode one value as JSON-compatible data."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, Instant):
        if value.is_pos_inf:
            return {"$instant": "inf"}
        if value.is_neg_inf:
            return {"$instant": "-inf"}
        return {"$instant": value.isoformat(),
                "granularity": value.granularity.value}
    if isinstance(value, Period):
        return {"$period": [encode_value(value.start), encode_value(value.end)]}
    raise StorageError(f"cannot serialize value {value!r}")


def decode_value(data: Any) -> Any:
    """Decode data produced by :func:`encode_value`."""
    if not isinstance(data, dict):
        return data
    if "$instant" in data:
        literal = data["$instant"]
        if literal == "inf":
            return POS_INF
        if literal == "-inf":
            return NEG_INF
        granularity = Granularity(data.get("granularity", "day"))
        return Instant.parse(literal, granularity)
    if "$period" in data:
        start, end = data["$period"]
        return Period(decode_value(start), decode_value(end))
    raise StorageError(f"unknown tagged value {data!r}")


# ---------------------------------------------------------------------------
# Domains and schemas
# ---------------------------------------------------------------------------

def _domain_to_dict(domain: Domain) -> Dict[str, Any]:
    if domain.enum_values is not None:
        return {"kind": "enumeration", "name": domain.name,
                "values": list(domain.enum_values)}
    if domain.is_user_defined_time:
        return {"kind": "user_defined_time", "name": domain.name}
    for name, builtin in _BUILTIN_DOMAINS.items():
        if domain == builtin:
            return {"kind": "builtin", "name": name}
    raise StorageError(f"cannot serialize domain {domain!r}")


def _domain_from_dict(data: Dict[str, Any]) -> Domain:
    kind = data.get("kind")
    if kind == "builtin":
        try:
            return _BUILTIN_DOMAINS[data["name"]]
        except KeyError:
            raise StorageError(f"unknown builtin domain {data['name']!r}") from None
    if kind == "enumeration":
        return Domain.enumeration(data["name"], *data["values"])
    if kind == "user_defined_time":
        return Domain.user_defined_time(data["name"])
    raise StorageError(f"unknown domain descriptor {data!r}")


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialize a schema (attributes, domains, nullability, key)."""
    return {
        "attributes": [
            {"name": attribute.name,
             "domain": _domain_to_dict(attribute.domain),
             "nullable": attribute.nullable}
            for attribute in schema
        ],
        "key": list(schema.key),
    }


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    """Deserialize a schema produced by :func:`schema_to_dict`."""
    attributes = [
        Attribute(item["name"], _domain_from_dict(item["domain"]),
                  nullable=item.get("nullable", False))
        for item in data["attributes"]
    ]
    return Schema(attributes, key=data.get("key") or None)


# ---------------------------------------------------------------------------
# Relations (all four storage shapes)
# ---------------------------------------------------------------------------

def _tuple_to_list(row: Tuple) -> List[Any]:
    return [encode_value(value) for value in row.values]


def _tuple_from_list(schema: Schema, values: List[Any]) -> Tuple:
    return Tuple.from_sequence(schema, [decode_value(value) for value in values])


def relation_to_dict(relation: Relation) -> Dict[str, Any]:
    """Serialize a static relation."""
    return {"kind": "static", "schema": schema_to_dict(relation.schema),
            "tuples": [_tuple_to_list(row) for row in relation]}


def historical_to_dict(relation: HistoricalRelation) -> Dict[str, Any]:
    """Serialize a historical relation."""
    return {"kind": "historical", "schema": schema_to_dict(relation.schema),
            "rows": [[_tuple_to_list(row.data), encode_value(row.valid)]
                     for row in relation.rows]}


def rollback_to_dict(relation: RollbackRelation) -> Dict[str, Any]:
    """Serialize an interval-stamped rollback relation."""
    return {"kind": "rollback", "schema": schema_to_dict(relation.schema),
            "rows": [[_tuple_to_list(row.data), encode_value(row.tt)]
                     for row in relation.rows]}


def states_to_dict(sequence: StateSequence) -> Dict[str, Any]:
    """Serialize a state-sequence rollback store."""
    return {"kind": "states", "schema": schema_to_dict(sequence.schema),
            "states": [[encode_value(time),
                        [_tuple_to_list(row) for row in state]]
                       for time, state in sequence.states]}


def temporal_to_dict(relation: TemporalRelation) -> Dict[str, Any]:
    """Serialize a bitemporal relation."""
    return {"kind": "temporal", "schema": schema_to_dict(relation.schema),
            "rows": [[_tuple_to_list(row.data), encode_value(row.valid),
                      encode_value(row.tt)]
                     for row in relation.rows]}


def relation_from_dict(data: Dict[str, Any]):
    """Deserialize any relation shape produced by the ``*_to_dict`` functions."""
    schema = schema_from_dict(data["schema"])
    kind = data.get("kind")
    if kind == "static":
        return Relation(schema, (_tuple_from_list(schema, values)
                                 for values in data["tuples"]))
    if kind == "historical":
        return HistoricalRelation(schema, (
            HistoricalRow(_tuple_from_list(schema, values), decode_value(valid))
            for values, valid in data["rows"]))
    if kind == "rollback":
        return RollbackRelation(schema, (
            TransactionTimeRow(_tuple_from_list(schema, values),
                               decode_value(tt))
            for values, tt in data["rows"]))
    if kind == "states":
        return StateSequence(schema, (
            (decode_value(time),
             Relation(schema, (_tuple_from_list(schema, row) for row in rows)))
            for time, rows in data["states"]))
    if kind == "temporal":
        return TemporalRelation(schema, (
            BitemporalRow(_tuple_from_list(schema, values),
                          decode_value(valid), decode_value(tt))
            for values, valid, tt in data["rows"]))
    raise StorageError(f"unknown relation kind {kind!r}")


# ---------------------------------------------------------------------------
# Whole databases
# ---------------------------------------------------------------------------

_DB_CLASSES = {
    "static": StaticDatabase,
    "static rollback": RollbackDatabase,
    "historical": HistoricalDatabase,
    "temporal": TemporalDatabase,
}


def _store_to_dict(database, name: str) -> Dict[str, Any]:
    if isinstance(database, StaticDatabase):
        return relation_to_dict(database.snapshot(name))
    if isinstance(database, RollbackDatabase):
        store = database.store(name)
        if isinstance(store, StateSequence):
            return states_to_dict(store)
        return rollback_to_dict(store)
    if isinstance(database, HistoricalDatabase):
        return historical_to_dict(database.history(name))
    if isinstance(database, TemporalDatabase):
        return temporal_to_dict(database.temporal(name))
    raise StorageError(f"cannot dump database {database!r}")


def dump_database(database) -> Dict[str, Any]:
    """Serialize a whole database (any kind) to plain data.

    Check constraints are not serialized; everything else — schemas, event
    flags, full stores including history, and the clock position — is.
    """
    relations = {}
    for name in database.relation_names():
        entry = {
            "schema": schema_to_dict(database.schema(name)),
            "store": _store_to_dict(database, name),
        }
        is_event = getattr(database, "is_event_relation", None)
        if is_event is not None and is_event(name):
            entry["event"] = True
        relations[name] = entry
    last = database.manager.clock.last
    return {
        "version": FORMAT_VERSION,
        "kind": database.kind.value,
        "representation": getattr(database, "representation", None),
        "clock_last": encode_value(last) if last is not None else None,
        "relations": relations,
    }


def load_database(data: Dict[str, Any], clock=None):
    """Reconstruct a database from :func:`dump_database` output.

    The returned database's clock resumes after the dumped position, so
    new commits keep strictly increasing transaction times.
    """
    if data.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported dump version {data.get('version')!r}"
        )
    kind = data.get("kind")
    try:
        db_class = _DB_CLASSES[kind]
    except KeyError:
        raise StorageError(f"unknown database kind {kind!r}") from None

    last = (decode_value(data["clock_last"])
            if data.get("clock_last") is not None else None)
    if clock is None:
        clock = SimulatedClock(last if last is not None else 1)

    if db_class is RollbackDatabase:
        database = RollbackDatabase(
            clock=clock, representation=data.get("representation") or INTERVAL)
    else:
        database = db_class(clock=clock)

    # Rebuild private state directly; the dump is the source of truth.
    for name, entry in data["relations"].items():
        schema = schema_from_dict(entry["schema"])
        database._schemas[name] = schema
        database._constraints[name] = []
        database._store[name] = relation_from_dict(entry["store"])
        if entry.get("event"):
            database._event_relations.add(name)
    if last is not None:
        # Advance the transaction clock past the dumped position.
        database.manager.clock._last = last  # noqa: SLF001 - deliberate restore
    return database


def dumps_database(database, indent: Optional[int] = None) -> str:
    """:func:`dump_database` to a JSON string."""
    return json.dumps(dump_database(database), indent=indent,
                      ensure_ascii=False, sort_keys=True)


def loads_database(text: str, clock=None):
    """:func:`load_database` from a JSON string."""
    return load_database(json.loads(text), clock=clock)
